//! Tile-geometry DRAM area and latency model.
//!
//! The model follows the structure described in Sec. IV of the paper
//! (Fig. 6): a DRAM die is divided into banks; a bank into subarrays that
//! share sense amplifiers; a subarray into tiles that share global
//! wordlines. Tile dimensions set the bitline and local wordline lengths,
//! which dominate the array access delay; shrinking them requires more
//! peripheral strips (sense amplifiers under each tile row, wordline
//! drivers beside each tile column), which costs area.
//!
//! All constants are calibrated in [`TechnologyParams::default`] so that
//! the normalized latency/area curves match the anchor points the paper
//! reports for Fig. 7 (1024x1024 -> 256x256 cuts latency by ~64% for ~49%
//! more area; going further to 128x128 buys only ~6% more latency for
//! ~150% more area).

/// Dimensions of a DRAM tile in cells: `rows` sets the bitline length,
/// `cols` the local wordline length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileGeometry {
    /// Cells per bitline (tile height).
    pub rows: u32,
    /// Cells per local wordline (tile width).
    pub cols: u32,
}

impl TileGeometry {
    /// A square tile of dimension `d` x `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn square(d: u32) -> Self {
        assert!(d > 0, "tile dimension must be positive");
        TileGeometry { rows: d, cols: d }
    }

    /// Number of cells in the tile.
    pub fn cells(self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

impl std::fmt::Display for TileGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Technology constants for the analytical model (22 nm DRAM node).
///
/// The latency model is
///
/// ```text
/// t = t_fixed + k_line * (max(rows, line_floor) + max(cols, line_floor))
///   + k_page_ns_per_kib * page_kib + k_mux * log2(banks)
/// ```
///
/// where the `line_floor` captures the fixed sense-amplifier resolve and
/// wordline-driver delays that stop mattering-line-length gains below
/// ~230 cells — this is what makes latency saturate below 256x256 tiles.
///
/// The area model multiplies the raw cell area by
/// `(1 + sa_rows / rows) * (1 + driver_cols / cols)`:
/// a sense-amplifier strip `sa_rows` cell-heights tall under every tile and
/// a driver strip `driver_cols` cell-widths wide beside every tile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechnologyParams {
    /// Fixed latency: command decode, column access, output drivers (ns).
    pub t_fixed_ns: f64,
    /// Delay per cell of bitline/wordline length (ns per cell).
    pub k_line_ns_per_cell: f64,
    /// Effective minimum electrical line length in cells (driver and
    /// sense-amp fixed delays dominate below this).
    pub line_floor_cells: f64,
    /// Extra global-wordline delay per KiB of page width (ns/KiB).
    pub k_page_ns_per_kib: f64,
    /// Output-mux delay per doubling of the bank count (ns).
    pub k_mux_ns_per_log2_bank: f64,
    /// TSV + vertical routing delay for a die-stacked access (ns).
    pub t_tsv_ns: f64,
    /// Area of one DRAM cell in um^2 (6F^2 at 22 nm).
    pub cell_area_um2: f64,
    /// Sense-amplifier strip height, in cell heights, charged per tile.
    pub sa_rows: f64,
    /// Wordline-driver strip width, in cell widths, charged per tile.
    pub driver_cols: f64,
    /// Fixed peripheral area per bank (row/column decoders, I/O gating),
    /// in mm^2.
    pub bank_fixed_mm2: f64,
    /// Fixed per-die area for the vault I/O and TSV field, in mm^2.
    pub die_io_mm2: f64,
}

impl Default for TechnologyParams {
    fn default() -> Self {
        TechnologyParams {
            // Calibrated so (a) the Fig. 7 chip-level normalized anchors
            // hold (see `vault::fig7_curve` tests), (b) the latency-
            // optimized vault of Fig. 8 lands near 256 MB at ~5.5 ns, and
            // (c) the capacity-optimized vault lands near 512 MB at ~10 ns.
            t_fixed_ns: 2.4,
            k_line_ns_per_cell: 3.2e-3,
            line_floor_cells: 230.0,
            k_page_ns_per_kib: 0.5,
            k_mux_ns_per_log2_bank: 0.08,
            t_tsv_ns: 0.5,
            // 6 F^2 cell at F = 22 nm.
            cell_area_um2: 6.0 * 0.022 * 0.022,
            sa_rows: 150.0,
            driver_cols: 30.0,
            bank_fixed_mm2: 0.045,
            die_io_mm2: 0.55,
        }
    }
}

impl TechnologyParams {
    /// Array access latency contributed by the tile geometry alone
    /// (bitline sensing + local wordline + fixed periphery), in ns.
    ///
    /// This is the quantity plotted on the latency axis of Fig. 7.
    pub fn tile_latency_ns(&self, tile: TileGeometry) -> f64 {
        let r_eff = (tile.rows as f64).max(self.line_floor_cells);
        let c_eff = (tile.cols as f64).max(self.line_floor_cells);
        self.t_fixed_ns + self.k_line_ns_per_cell * (r_eff + c_eff)
    }

    /// Full random-access latency of a bank in a die-stacked vault, in ns:
    /// tile delay plus page (global wordline) and bank-mux terms plus the
    /// TSV hop.
    ///
    /// # Panics
    ///
    /// Panics if `banks_per_vault` is zero or `page_bytes` is zero.
    pub fn access_latency_ns(
        &self,
        tile: TileGeometry,
        page_bytes: u32,
        banks_per_vault: u32,
    ) -> f64 {
        assert!(banks_per_vault > 0, "need at least one bank");
        assert!(page_bytes > 0, "page size must be positive");
        let page_kib = page_bytes as f64 / 1024.0;
        self.tile_latency_ns(tile)
            + self.k_page_ns_per_kib * page_kib
            + self.k_mux_ns_per_log2_bank * (banks_per_vault as f64).log2()
            + self.t_tsv_ns
    }

    /// Area multiplier over raw cell area for the given tile geometry:
    /// `(1 + sa/rows) * (1 + drv/cols)`. Always >= 1.
    pub fn area_factor(&self, tile: TileGeometry) -> f64 {
        (1.0 + self.sa_rows / tile.rows as f64) * (1.0 + self.driver_cols / tile.cols as f64)
    }

    /// Area efficiency: fraction of the array area that is DRAM cells.
    pub fn area_efficiency(&self, tile: TileGeometry) -> f64 {
        1.0 / self.area_factor(tile)
    }

    /// Bits that fit in `array_area_mm2` of silicon with this tile
    /// geometry, after peripheral overheads.
    pub fn bits_in_area(&self, tile: TileGeometry, array_area_mm2: f64) -> u64 {
        if array_area_mm2 <= 0.0 {
            return 0;
        }
        let um2 = array_area_mm2 * 1.0e6;
        let per_bit = self.cell_area_um2 * self.area_factor(tile);
        (um2 / per_bit) as u64
    }

    /// Normalized (latency, area) pair relative to a reference tile, as
    /// plotted in Fig. 7.
    pub fn normalized_vs(&self, tile: TileGeometry, reference: TileGeometry) -> (f64, f64) {
        let lat = self.tile_latency_ns(tile) / self.tile_latency_ns(reference);
        let area = self.area_factor(tile) / self.area_factor(reference);
        (lat, area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: TileGeometry = TileGeometry {
        rows: 1024,
        cols: 1024,
    };

    #[test]
    fn latency_decreases_with_smaller_tiles_until_floor() {
        let t = TechnologyParams::default();
        let l1024 = t.tile_latency_ns(TileGeometry::square(1024));
        let l512 = t.tile_latency_ns(TileGeometry::square(512));
        let l256 = t.tile_latency_ns(TileGeometry::square(256));
        let l128 = t.tile_latency_ns(TileGeometry::square(128));
        let l64 = t.tile_latency_ns(TileGeometry::square(64));
        assert!(l1024 > l512 && l512 > l256);
        // Below the electrical floor the curve flattens.
        assert!(l256 > l128 - 1e-9);
        assert!((l128 - l64).abs() < 1e-9);
    }

    #[test]
    fn tile_latency_anchor_256() {
        // The tile-only component of the Fig. 7 curve: the chip-level
        // normalized anchors (including page and bank terms) are tested in
        // `vault::fig7_curve`. Here the tile contribution alone should
        // fall roughly in half going 1024 -> 256.
        let t = TechnologyParams::default();
        let (lat, _) = t.normalized_vs(TileGeometry::square(256), BASELINE);
        assert!(
            (0.35..=0.55).contains(&lat),
            "256x256 normalized tile latency {lat} outside [0.35, 0.55]"
        );
    }

    #[test]
    fn tile_latency_anchor_128_marginal() {
        // 128x128 is below the electrical floor: nearly no tile-latency
        // gain relative to 256x256.
        let t = TechnologyParams::default();
        let l256 = t.tile_latency_ns(TileGeometry::square(256));
        let l128 = t.tile_latency_ns(TileGeometry::square(128));
        let drop = (l256 - l128) / l256;
        assert!(
            (0.0..=0.12).contains(&drop),
            "marginal 128x128 latency drop {drop} outside [0, 0.12]"
        );
    }

    #[test]
    fn fig7_area_anchor_256() {
        // Paper: 256x256 costs ~49% more area than 1024x1024.
        let t = TechnologyParams::default();
        let (_, area) = t.normalized_vs(TileGeometry::square(256), BASELINE);
        assert!(
            (1.35..=1.65).contains(&area),
            "256x256 normalized area {area} outside [1.35, 1.65]"
        );
    }

    #[test]
    fn fig7_area_explodes_below_128() {
        // Paper: 128x128 costs ~150% more area than baseline; 64x64 even more.
        let t = TechnologyParams::default();
        let (_, a128) = t.normalized_vs(TileGeometry::square(128), BASELINE);
        let (_, a64) = t.normalized_vs(TileGeometry::square(64), BASELINE);
        assert!(a128 > 2.0, "128x128 area {a128} should exceed 2x");
        assert!(
            a64 > a128 * 1.5,
            "64x64 area {a64} should dwarf 128x128 {a128}"
        );
    }

    #[test]
    fn area_factor_always_above_one() {
        let t = TechnologyParams::default();
        for d in [32, 64, 128, 256, 512, 1024, 2048] {
            assert!(t.area_factor(TileGeometry::square(d)) > 1.0);
        }
    }

    #[test]
    fn area_efficiency_is_inverse_of_factor() {
        let t = TechnologyParams::default();
        let g = TileGeometry::square(512);
        let prod = t.area_factor(g) * t.area_efficiency(g);
        assert!((prod - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bits_in_area_scales_linearly() {
        let t = TechnologyParams::default();
        let g = TileGeometry::square(512);
        let b1 = t.bits_in_area(g, 1.0);
        let b2 = t.bits_in_area(g, 2.0);
        assert!(b1 > 0);
        // Integer truncation allows off-by-one.
        assert!((b2 as i64 - 2 * b1 as i64).abs() <= 1);
        assert_eq!(t.bits_in_area(g, 0.0), 0);
        assert_eq!(t.bits_in_area(g, -1.0), 0);
    }

    #[test]
    fn raw_density_is_plausible_for_22nm() {
        // Raw (pre-overhead) density should be a few hundred Mbit/mm^2.
        let t = TechnologyParams::default();
        let bits_per_mm2 = 1.0e6 / t.cell_area_um2;
        assert!(
            (1.0e8..=1.0e9).contains(&bits_per_mm2),
            "raw density {bits_per_mm2} bits/mm^2 implausible"
        );
    }

    #[test]
    fn access_latency_adds_page_and_mux_terms() {
        let t = TechnologyParams::default();
        let g = TileGeometry::square(256);
        let small_page = t.access_latency_ns(g, 512, 8);
        let big_page = t.access_latency_ns(g, 8192, 8);
        assert!(big_page > small_page);
        let few_banks = t.access_latency_ns(g, 512, 8);
        let many_banks = t.access_latency_ns(g, 512, 128);
        assert!(many_banks > few_banks);
    }

    #[test]
    #[should_panic(expected = "bank")]
    fn access_latency_rejects_zero_banks() {
        TechnologyParams::default().access_latency_ns(TileGeometry::square(256), 512, 0);
    }

    #[test]
    fn tile_display_and_cells() {
        let g = TileGeometry {
            rows: 128,
            cols: 256,
        };
        assert_eq!(g.to_string(), "128x256");
        assert_eq!(g.cells(), 128 * 256);
    }
}
